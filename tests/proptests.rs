//! Property-based tests over the core invariants, spanning crates.

use epiflow::core::CombinedWorkflow;
use epiflow::epihiper::checkpoint::SimSnapshot;
use epiflow::epihiper::disease::sir_model;
use epiflow::epihiper::engine::{
    CounterRng, SimConfig, SimContext, SimResult, SimScratch, Simulation,
};
use epiflow::epihiper::interventions::{
    GenericIntervention, InterventionSet, Operation, StayAtHome, Target, Trigger,
};
use epiflow::epihiper::partition::partition_network;
use epiflow::hpcsim::cluster::ClusterSpec;
use epiflow::hpcsim::cluster::Site;
use epiflow::hpcsim::coloring::{
    greedy_relaxed_coloring, validate_relaxed_coloring, ConflictGraph,
};
use epiflow::hpcsim::schedule::{pack, PackAlgo};
use epiflow::hpcsim::task::Task;
use epiflow::hpcsim::task::WorkloadSpec;
use epiflow::linalg::{cholesky, Mat};
use epiflow::orchestrator::{
    sample_fault_plan, BreakerConfig, BreakerState, CampaignSpec, CircuitBreaker, CycleEnv, Dag,
    DeadlinePolicy, Engine, EngineEvent, FailoverPolicy, FaultProfile, NightlySpec, RetryPolicy,
    StepKind, StepSpec,
};
use epiflow::surveillance::CaseSeries;
use epiflow::surveillance::{RegionRegistry, Scale};
use epiflow::synthpop::ipf::{integerize, ipf};
use epiflow::synthpop::network::ContactEdge;
use epiflow::synthpop::{ActivityType, ContactNetwork};
use proptest::prelude::*;
use rand::RngCore;
use std::sync::Arc;

/// A 204-task nightly engine with failover + hedging on and an
/// arbitrary sampled fault plan (possibly a total remote kill).
fn failover_engine(base_seed: u64, night: u64, intensity: f64) -> Engine {
    let reg = RegionRegistry::new();
    let wf = CombinedWorkflow {
        workload: WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() },
        faults: sample_fault_plan(base_seed, night, intensity, &ClusterSpec::bridges()),
        deadline: DeadlinePolicy { shed_cells: true },
        failover: FailoverPolicy::on(),
        ..Default::default()
    };
    wf.engine(&reg, Scale::default())
}

fn arb_edges(max_nodes: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

/// Run an SIR simulation on `net` in the given scan mode.
fn run_epi(net: &ContactNetwork, beta: f64, seed: u64, parts: usize, reference: bool) -> SimResult {
    let n = net.n_nodes;
    let mut sim = Simulation::new(
        net,
        sir_model(beta, 5.0),
        vec![2; n],
        vec![0; n],
        InterventionSet::default(),
        SimConfig {
            ticks: 30,
            seed,
            n_partitions: parts,
            initial_infections: 3,
            reference_scan: reference,
            ..Default::default()
        },
    );
    sim.run()
}

/// Run a 30-tick SIR simulation to completion, or — when
/// `interrupt_at` is set — stop at that tick, round-trip a snapshot
/// through the wire encoding, and resume at a different partition
/// count. `mk_iv` builds the intervention set fresh for each
/// simulation (the set holds boxed trait objects and is not `Clone`).
fn run_epi_ckpt(
    net: &ContactNetwork,
    beta: f64,
    seed: u64,
    reference: bool,
    interrupt_at: Option<u32>,
    parts_after: usize,
    mk_iv: &dyn Fn() -> InterventionSet,
) -> SimResult {
    let n = net.n_nodes;
    let cfg = |ticks: u32, parts: usize| SimConfig {
        ticks,
        seed,
        n_partitions: parts,
        initial_infections: 3,
        reference_scan: reference,
        ..Default::default()
    };
    let sim = |ticks: u32, parts: usize| {
        Simulation::new(
            net,
            sir_model(beta, 5.0),
            vec![2; n],
            vec![0; n],
            mk_iv(),
            cfg(ticks, parts),
        )
    };
    let Some(k) = interrupt_at else {
        return sim(30, 4).run();
    };
    let mut interrupted = sim(k, 4);
    interrupted.run();
    let bytes = interrupted.snapshot().encode();
    let snap = SimSnapshot::decode(&bytes).expect("snapshot wire round-trip");
    let mut resumed = Simulation::resume(
        net,
        sir_model(beta, 5.0),
        vec![2; n],
        vec![0; n],
        mk_iv(),
        cfg(30, parts_after),
        &snap,
    )
    .expect("snapshot accepted on resume");
    resumed.run()
}

fn make_network(n: u32, pairs: &[(u32, u32)]) -> ContactNetwork {
    let mut seen = std::collections::HashSet::new();
    let edges = pairs
        .iter()
        .filter(|(u, v)| u != v)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .filter(|p| seen.insert(*p))
        .map(|(u, v)| ContactEdge {
            u,
            v,
            start: 0,
            duration: 60,
            ctx_u: ActivityType::Work,
            ctx_v: ActivityType::Work,
            weight: 1.0,
        })
        .collect();
    ContactNetwork { n_nodes: n as usize, edges }
}

/// A random workflow DAG of flaky steps: `(secs, fail_attempts,
/// wasted_secs, max_retries, dep_picks)` per step, with each dep pick
/// reduced modulo the step index (edges always point backwards).
type FlakySpec = (f64, u32, f64, u32, Vec<u64>);

fn build_flaky_dag(specs: &[FlakySpec]) -> Dag {
    let mut dag = Dag::default();
    for (i, (secs, fails, wasted, retries, picks)) in specs.iter().enumerate() {
        let mut deps: Vec<usize> =
            if i == 0 { Vec::new() } else { picks.iter().map(|&p| (p as usize) % i).collect() };
        deps.sort_unstable();
        deps.dedup();
        dag.add(StepSpec {
            name: format!("s{i}"),
            site: Site::Remote,
            automated: true,
            kind: StepKind::Flaky { secs: *secs, fail_attempts: *fails, wasted_secs: *wasted },
            deps,
            retry: RetryPolicy::retries(*retries, 1.0),
        });
    }
    dag
}

fn arb_flaky_specs() -> impl Strategy<Value = Vec<FlakySpec>> {
    prop::collection::vec(
        (1.0f64..100.0, 0u32..4, 0.5f64..20.0, 0u32..5, prop::collection::vec(any::<u64>(), 0..3)),
        1..16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No step starts before all its dependencies complete.
    #[test]
    fn engine_steps_wait_for_deps(specs in arb_flaky_specs()) {
        let dag = build_flaky_dag(&specs);
        let result = Engine::new(dag.clone(), CycleEnv::synthetic()).run();
        let mut ends = std::collections::HashMap::new();
        for e in &result.journal.entries {
            ends.insert(e.step, e.event.start_secs + e.event.duration_secs);
        }
        for e in &result.journal.entries {
            for &d in &dag.steps[e.step].deps {
                let dep_end = ends.get(&d).expect("a completed step's deps all completed");
                prop_assert!(
                    e.event.start_secs >= dep_end - 1e-9,
                    "step {} started at {} before dep {} ended at {}",
                    e.step, e.event.start_secs, d, dep_end
                );
            }
        }
    }

    /// Retry counts never exceed the policy bound, and a step completes
    /// exactly when its failures fit inside the bound (deps permitting).
    #[test]
    fn engine_retries_respect_policy(specs in arb_flaky_specs()) {
        let dag = build_flaky_dag(&specs);
        let result = Engine::new(dag.clone(), CycleEnv::synthetic()).run();
        let mut failed_attempts = vec![0u32; dag.len()];
        for e in &result.events {
            if let EngineEvent::AttemptFailed { step, .. } = e {
                failed_attempts[*step] += 1;
            }
        }
        let completed: std::collections::HashSet<usize> =
            result.journal.entries.iter().map(|e| e.step).collect();
        for (i, spec) in dag.steps.iter().enumerate() {
            prop_assert!(failed_attempts[i] <= spec.retry.max_attempts());
            let StepKind::Flaky { fail_attempts, .. } = spec.kind else { unreachable!() };
            let deps_ok = spec.deps.iter().all(|d| completed.contains(d));
            let should_complete = deps_ok && fail_attempts < spec.retry.max_attempts();
            prop_assert_eq!(completed.contains(&i), should_complete, "step {}", i);
        }
        for e in &result.journal.entries {
            prop_assert!(e.attempts <= dag.steps[e.step].retry.max_attempts());
        }
    }

    /// Resuming from ANY journal prefix reproduces the uninterrupted
    /// run's report and journal exactly, without redoing finished steps.
    #[test]
    fn engine_resume_any_prefix_identical(specs in arb_flaky_specs()) {
        let dag = build_flaky_dag(&specs);
        let engine = Engine::new(dag, CycleEnv::synthetic());
        let full = engine.run();
        for k in 0..=full.journal.entries.len() {
            let prefix = full.journal.prefix(k);
            let resumed = engine.resume(&prefix);
            prop_assert_eq!(&resumed.report, &full.report, "prefix {}", k);
            prop_assert_eq!(&resumed.journal, &full.journal, "prefix {}", k);
            for s in &resumed.live_steps {
                prop_assert!(
                    !prefix.entries.iter().any(|e| e.step == *s),
                    "journaled step {} was re-executed on resume", s
                );
            }
        }
    }

    /// The frontier scan is byte-identical to the reference full-range
    /// scan on arbitrary sparse/disconnected networks, across seeds and
    /// partition counts, and never examines more λ-pass edges.
    #[test]
    fn frontier_scan_equals_reference_sparse(
        (n, pairs) in arb_edges(300),
        seed in any::<u64>(),
        beta in 0.0f64..3.0,
    ) {
        let net = make_network(n, &pairs);
        for parts in [1usize, 4, 13] {
            let fr = run_epi(&net, beta, seed, parts, false);
            let rf = run_epi(&net, beta, seed, parts, true);
            prop_assert_eq!(
                &fr.output.transitions, &rf.output.transitions,
                "transition logs diverge at {} partitions", parts
            );
            prop_assert_eq!(&fr.output.new_counts, &rf.output.new_counts);
            prop_assert_eq!(&fr.output.current_counts, &rf.output.current_counts);
            prop_assert_eq!(&fr.output.memory_bytes, &rf.output.memory_bytes);
            prop_assert!(
                fr.stats.total_edges_scanned() <= rf.stats.total_edges_scanned()
            );
        }
    }

    /// Same equivalence on small dense networks, where the frontier
    /// covers most of the graph (the worst case for the merge scan).
    #[test]
    fn frontier_scan_equals_reference_dense(
        (n, pairs) in arb_edges(16),
        seed in any::<u64>(),
        beta in 0.5f64..3.0,
    ) {
        let net = make_network(n, &pairs);
        for parts in [1usize, 4, 13] {
            let fr = run_epi(&net, beta, seed, parts, false);
            let rf = run_epi(&net, beta, seed, parts, true);
            prop_assert_eq!(&fr.output.transitions, &rf.output.transitions);
            prop_assert_eq!(&fr.output.current_counts, &rf.output.current_counts);
        }
    }

    /// The golden checkpoint invariant: interrupting a run at *any*
    /// tick, round-tripping the snapshot through the checksummed wire
    /// encoding, and resuming — at a different partition count — is
    /// byte-identical to the uninterrupted run, in both scan modes.
    #[test]
    fn ckpt_resume_any_tick_byte_identical(
        (n, pairs) in arb_edges(120),
        seed in any::<u64>(),
        beta in 0.0f64..3.0,
        k in 0u32..=30,
    ) {
        let net = make_network(n, &pairs);
        let no_iv = InterventionSet::default;
        for reference in [false, true] {
            let full = run_epi_ckpt(&net, beta, seed, reference, None, 4, &no_iv);
            // Resume at the same partition count: everything matches,
            // counters included.
            let same = run_epi_ckpt(&net, beta, seed, reference, Some(k), 4, &no_iv);
            prop_assert_eq!(
                &full.output, &same.output,
                "output diverged after interrupt at tick {}", k
            );
            prop_assert_eq!(&full.stats, &same.stats);
            prop_assert_eq!(full.ticks_run, same.ticks_run);
            // Resume at a different partition count: the epidemic is
            // unchanged; only the per-partition scan-cost counter
            // (`edges_scanned`) may legitimately shift.
            for parts_after in [1usize, 13] {
                let repart = run_epi_ckpt(&net, beta, seed, reference, Some(k), parts_after, &no_iv);
                prop_assert_eq!(
                    &full.output, &repart.output,
                    "output diverged resuming at {} partitions after tick {}", parts_after, k
                );
                prop_assert_eq!(&full.stats.frontier_nodes, &repart.stats.frontier_nodes);
                prop_assert_eq!(&full.stats.due_nodes, &repart.stats.due_nodes);
                prop_assert_eq!(&full.stats.events, &repart.stats.events);
            }
        }
    }

    /// Same invariant with stateful interventions in play: a
    /// compliance-sampled stay-at-home order plus a delayed, fire-once
    /// isolation rule whose pending/fired state must survive the
    /// snapshot round-trip.
    #[test]
    fn ckpt_resume_with_interventions_identical(
        (n, pairs) in arb_edges(80),
        seed in any::<u64>(),
        beta in 0.5f64..3.0,
        k in 0u32..=30,
    ) {
        let net = make_network(n, &pairs);
        let mk_iv = || {
            let mut isolate = GenericIntervention::new(
                "isolate-on-spread",
                Trigger::StateCountAtLeast { state: 1, count: 4 },
                Target::NodesInState { state: 1 },
                vec![Operation::Isolate { days: 5 }],
            );
            isolate.once = true;
            isolate.delay = 2;
            InterventionSet::new()
                .with(Box::new(StayAtHome::new(3, 12, 0.6)))
                .with(Box::new(isolate))
        };
        let full = run_epi_ckpt(&net, beta, seed, false, None, 4, &mk_iv);
        let resumed = run_epi_ckpt(&net, beta, seed, false, Some(k), 4, &mk_iv);
        prop_assert_eq!(
            &full.output, &resumed.output,
            "intervention state diverged after interrupt at tick {}", k
        );
        prop_assert_eq!(&full.stats, &resumed.stats);
    }

    /// The partitioner covers all nodes exactly once, never exceeds the
    /// requested partition count, and preserves every in-edge.
    #[test]
    fn partition_invariants((n, pairs) in arb_edges(300), parts in 1usize..12, eps in 0usize..20) {
        let net = make_network(n, &pairs);
        let p = partition_network(&net, parts, eps);
        prop_assert!(p.len() <= parts);
        let mut covered = 0u32;
        for r in &p.ranges {
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, n);
        let total_in: usize = p.edge_counts.iter().sum();
        prop_assert_eq!(total_in, net.edges.len() * 2);
    }

    /// Both packers produce valid plans for arbitrary task sets.
    #[test]
    fn packers_always_valid(
        specs in prop::collection::vec((0usize..8, 1usize..6, 1.0f64..1000.0), 1..60),
        machine in 6usize..32,
        bound in 1usize..6,
    ) {
        let tasks: Vec<Task> = specs
            .iter()
            .enumerate()
            .map(|(i, &(region, nodes, secs))| Task {
                id: i as u32,
                region,
                cell: 0,
                replicate: 0,
                nodes,
                est_secs: secs,
                actual_secs: secs,
                db_connections: 1,
            })
            .collect();
        for algo in [PackAlgo::NfdtDc, PackAlgo::FfdtDc] {
            let plan = pack(&tasks, machine, |_| bound, algo);
            prop_assert!(plan.validate(&tasks, |_| bound).is_ok());
            prop_assert_eq!(plan.n_tasks(), tasks.len());
            let stats = plan.execute(&tasks);
            prop_assert!(stats.utilization > 0.0 && stats.utilization <= 1.0 + 1e-9);
        }
    }

    /// FFDT-DC never uses more levels than NFDT-DC on the same input.
    #[test]
    fn ffdt_levels_never_exceed_nfdt(
        specs in prop::collection::vec((0usize..5, 1usize..4, 1.0f64..500.0), 1..40),
    ) {
        let tasks: Vec<Task> = specs
            .iter()
            .enumerate()
            .map(|(i, &(region, nodes, secs))| Task {
                id: i as u32,
                region,
                cell: 0,
                replicate: 0,
                nodes,
                est_secs: secs,
                actual_secs: secs,
                db_connections: 1,
            })
            .collect();
        let nf = pack(&tasks, 8, |_| 3, PackAlgo::NfdtDc);
        let ff = pack(&tasks, 8, |_| 3, PackAlgo::FfdtDc);
        prop_assert!(ff.levels.len() <= nf.levels.len());
    }

    /// IPF hits both marginals whenever the seed admits them.
    #[test]
    fn ipf_fits_marginals(
        seed in prop::collection::vec(prop::collection::vec(0.1f64..10.0, 3), 3),
        rows in prop::collection::vec(1.0f64..100.0, 3),
        cols_raw in prop::collection::vec(1.0f64..100.0, 3),
    ) {
        // Rescale columns so totals agree.
        let rt: f64 = rows.iter().sum();
        let ct: f64 = cols_raw.iter().sum();
        let cols: Vec<f64> = cols_raw.iter().map(|c| c * rt / ct).collect();
        let res = ipf(&seed, &rows, &cols, 1e-9, 2000);
        prop_assert!(res.converged, "max_error {}", res.max_error);
        for (i, row) in res.table.iter().enumerate() {
            let s: f64 = row.iter().sum();
            prop_assert!((s - rows[i]).abs() < 1e-6 * rows[i].max(1.0));
        }
    }

    /// Integerization preserves the requested total exactly.
    #[test]
    fn integerize_total_exact(
        table in prop::collection::vec(prop::collection::vec(0.01f64..50.0, 4), 4),
        total in 1u64..100_000,
    ) {
        let ints = integerize(&table, total);
        let sum: u64 = ints.iter().flat_map(|r| r.iter()).sum();
        prop_assert_eq!(sum, total);
    }

    /// Cholesky reconstructs any matrix built as A = BᵀB + I.
    #[test]
    fn cholesky_reconstructs(entries in prop::collection::vec(-2.0f64..2.0, 9)) {
        let b = Mat::from_rows_flat(3, 3, &entries);
        let mut a = b.transpose().matmul(&b);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let c = cholesky(&a).unwrap();
        let rec = c.l().matmul(&c.l().transpose());
        prop_assert!((&rec - &a).max_abs() < 1e-8);
        // Solve agrees with the definition.
        let x = c.solve(&[1.0, 2.0, 3.0]);
        let back = a.matvec(&x);
        prop_assert!((back[0] - 1.0).abs() < 1e-6);
        prop_assert!((back[1] - 2.0).abs() < 1e-6);
        prop_assert!((back[2] - 3.0).abs() < 1e-6);
    }

    /// Greedy r-relaxed coloring is always valid on region-clique
    /// conflict graphs, and uses exactly ceil(max clique / (r+1)) colors.
    #[test]
    fn relaxed_coloring_valid(
        regions in prop::collection::vec(0usize..6, 1..60),
        r in 0usize..4,
    ) {
        let g = ConflictGraph::region_cliques(&regions);
        let order: Vec<u32> = (0..regions.len() as u32).collect();
        let colors = greedy_relaxed_coloring(&g, &order, r);
        prop_assert!(validate_relaxed_coloring(&g, &colors, r));
        let mut clique_sizes = std::collections::HashMap::new();
        for &reg in &regions {
            *clique_sizes.entry(reg).or_insert(0usize) += 1;
        }
        let expect = clique_sizes.values().map(|&s| s.div_ceil(r + 1)).max().unwrap();
        let used = *colors.iter().max().unwrap() as usize + 1;
        prop_assert_eq!(used, expect);
    }

    /// Case series: cumulative/daily round trip and smoothing mass
    /// preservation (away from edges).
    #[test]
    fn case_series_round_trip(daily in prop::collection::vec(0.0f64..1000.0, 1..80)) {
        let s = CaseSeries::from_daily(daily.clone());
        let back = CaseSeries::from_cumulative(&s.cumulative());
        for (a, b) in s.daily.iter().zip(&back.daily) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Smoothing never produces negative counts and preserves totals
        // within edge effects.
        let sm = s.smooth7();
        prop_assert!(sm.daily.iter().all(|&x| x >= 0.0));
    }

    /// CounterRng: deterministic per key, and distinct keys produce
    /// distinct streams (collision would break replicate independence).
    #[test]
    fn counter_rng_keys_independent(seed in any::<u64>(), a in 0u32..10_000, b in 0u32..10_000, t in 0u32..1000) {
        let take = |node: u32, tick: u32| -> Vec<u64> {
            let mut r = CounterRng::new(seed, node, tick);
            (0..4).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(take(a, t), take(a, t));
        if a != b {
            prop_assert_ne!(take(a, t), take(b, t));
        }
    }

    /// A circuit breaker never admits a call while open before the
    /// cool-down has elapsed, and always admits while closed. State is
    /// modelled externally from the transitions `record` reports, so
    /// this also pins `record` as the only place transitions happen.
    #[test]
    fn breaker_never_admits_while_open_before_cooldown(
        calls in prop::collection::vec((0.0f64..200.0, any::<bool>()), 1..80),
    ) {
        let config = BreakerConfig::default();
        let mut breaker = CircuitBreaker::new(config);
        let mut now = 0.0;
        let mut opened_at = None;
        for (gap, success) in calls {
            now += gap;
            let admitted = breaker.admits(now);
            match opened_at {
                Some(t) if now - t < config.cooldown_secs => prop_assert!(
                    !admitted,
                    "admitted at {} while open since {} (cool-down {})",
                    now, t, config.cooldown_secs
                ),
                Some(_) => prop_assert!(admitted, "cool-down elapsed: probe must be admitted"),
                None => prop_assert!(admitted, "closed/half-open breakers admit"),
            }
            let probe = opened_at.is_some_and(|t| now - t >= config.cooldown_secs);
            match breaker.record(now, success) {
                Some((_, BreakerState::Open)) => opened_at = Some(now),
                Some((_, BreakerState::Closed)) => opened_at = None,
                // Half-open: cool-down has elapsed; probes admitted.
                Some((_, BreakerState::HalfOpen)) => {}
                // A failed probe re-trips Open → HalfOpen → Open within
                // one `record`; from == to, so no transition is
                // reported, but the cool-down clock restarts.
                None if probe && !success => opened_at = Some(now),
                None => {}
            }
        }
    }

    /// Under arbitrary sampled fault plans — total remote kills
    /// included — failover never starts a step before its dependencies
    /// end, and resume from any journal prefix is exact.
    #[test]
    fn failover_respects_deps_and_resumes_exactly(
        base_seed in any::<u64>(),
        night in 0u64..1000,
        intensity in 0.0f64..1.0,
    ) {
        let engine = failover_engine(base_seed, night, intensity);
        let full = engine.run();
        let mut ends = std::collections::HashMap::new();
        for e in &full.journal.entries {
            ends.insert(e.step, e.event.start_secs + e.event.duration_secs);
        }
        for e in &full.journal.entries {
            for &d in &engine.dag.steps[e.step].deps {
                let dep_end = ends.get(&d).expect("a completed step's deps all completed");
                prop_assert!(
                    e.event.start_secs >= dep_end - 1e-9,
                    "step {} started at {} before dep {} ended at {}",
                    e.step, e.event.start_secs, d, dep_end
                );
            }
        }
        for k in 0..=full.journal.entries.len() {
            let resumed = engine.resume(&full.journal.prefix(k));
            prop_assert_eq!(&resumed.report, &full.report, "prefix {}", k);
            prop_assert_eq!(&resumed.journal, &full.journal, "prefix {}", k);
        }
    }

    /// A campaign is a pure function of its seed: the rayon fan-out
    /// returns exactly what a sequential loop over `run_night` returns,
    /// run after run.
    #[test]
    fn campaign_deterministic_regardless_of_parallelism(base_seed in any::<u64>()) {
        let engine = failover_engine(0, 0, 0.0);
        let spec = CampaignSpec {
            nightly: NightlySpec { failover: FailoverPolicy::on(), ..NightlySpec::default() },
            tasks: engine.env.tasks.clone(),
            region_rows: engine.env.region_rows.clone(),
            deadline: DeadlinePolicy { shed_cells: true },
            intensities: vec![0.4, 1.0],
            nights_per_intensity: 3,
            base_seed,
            profile: FaultProfile::Mixed,
        };
        let parallel = spec.run();
        prop_assert_eq!(&parallel, &spec.run());
        let sequential: Vec<_> = (0..spec.intensities.len())
            .flat_map(|ii| (0..3u64).map(move |n| (ii, n)))
            .map(|(ii, n)| spec.run_night(ii, n))
            .collect();
        prop_assert_eq!(&parallel.outcomes, &sequential);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ensemble invariant: one shared [`SimContext`] per partition
    /// count, reused across a ⟨cell (beta), replicate (seed)⟩ grid with
    /// pooled scratch carried run-to-run, is byte-identical to building
    /// every simulation from scratch — outputs, telemetry, and snapshot
    /// wire bytes alike. A context-backed run interrupted mid-flight
    /// also resumes through the same shared `Arc` to the same bytes.
    #[test]
    fn shared_context_grid_byte_identical(
        (n, pairs) in arb_edges(80),
        base_seed in any::<u64>(),
        k in 0u32..=30,
    ) {
        let net = make_network(n, &pairs);
        let nn = net.n_nodes;
        let betas = [0.4f64, 1.5]; // two cells of a tiny study design
        let cfg = |seed: u64, ticks: u32, parts: usize| SimConfig {
            ticks,
            seed,
            n_partitions: parts,
            initial_infections: 3,
            ..Default::default()
        };
        for parts in [1usize, 4, 13] {
            let ctx = Arc::new(SimContext::build(
                &net,
                vec![2; nn],
                vec![0; nn],
                parts,
                SimConfig::default().epsilon,
            ));
            let mut scratch = SimScratch::new();
            for (cell, &beta) in betas.iter().enumerate() {
                for rep in 0..2u64 {
                    let seed = base_seed ^ ((cell as u64) << 16) ^ rep;
                    let mut fresh = Simulation::new(
                        &net,
                        sir_model(beta, 5.0),
                        vec![2; nn],
                        vec![0; nn],
                        InterventionSet::default(),
                        cfg(seed, 30, parts),
                    );
                    let fresh_out = fresh.run();
                    let mut shared = Simulation::new_with_context(
                        Arc::clone(&ctx),
                        sir_model(beta, 5.0),
                        InterventionSet::default(),
                        cfg(seed, 30, parts),
                    );
                    shared.install_scratch(std::mem::take(&mut scratch));
                    let shared_out = shared.run();
                    scratch = shared.take_scratch();
                    prop_assert_eq!(
                        &fresh_out.output, &shared_out.output,
                        "cell {} rep {} diverged at {} partitions", cell, rep, parts
                    );
                    prop_assert_eq!(&fresh_out.stats, &shared_out.stats);
                    prop_assert_eq!(fresh.snapshot().encode(), shared.snapshot().encode());
                }
            }
            // Interrupt a context-backed run at tick `k` and resume it
            // through the *same* shared context.
            let seed = base_seed ^ 0xA5;
            let beta = betas[1];
            let mut baseline = Simulation::new_with_context(
                Arc::clone(&ctx),
                sir_model(beta, 5.0),
                InterventionSet::default(),
                cfg(seed, 30, parts),
            );
            let base_out = baseline.run();
            let mut interrupted = Simulation::new_with_context(
                Arc::clone(&ctx),
                sir_model(beta, 5.0),
                InterventionSet::default(),
                cfg(seed, k, parts),
            );
            interrupted.install_scratch(std::mem::take(&mut scratch));
            interrupted.run();
            scratch = interrupted.take_scratch();
            let bytes = interrupted.snapshot().encode();
            let snap = SimSnapshot::decode(&bytes).expect("snapshot wire round-trip");
            let mut resumed = Simulation::resume_with_context(
                Arc::clone(&ctx),
                sir_model(beta, 5.0),
                InterventionSet::default(),
                cfg(seed, 30, parts),
                &snap,
            )
            .expect("snapshot accepted through shared context");
            let res_out = resumed.run();
            prop_assert_eq!(
                &base_out.output, &res_out.output,
                "context-backed resume diverged at tick {} on {} partitions", k, parts
            );
            prop_assert_eq!(&base_out.stats, &res_out.stats);
        }
    }
}
