//! Integration tests for the HPC workflow layer: scheduling, the
//! two-cluster combined workflow, and the Table-I/II arithmetic.

use epiflow::core::design::CellConfig;
use epiflow::core::{CombinedWorkflow, FactorialDesign, StudyDesign};
use epiflow::hpcsim::schedule::{pack, pack_arrival, PackAlgo};
use epiflow::hpcsim::slurm::SlurmSim;
use epiflow::hpcsim::task::WorkloadSpec;
use epiflow::hpcsim::ClusterSpec;
use epiflow::surveillance::{RegionRegistry, Scale};

/// The full nightly prediction workload (9180 sims) must fit the
/// 10-hour Bridges window with high utilization — the paper's core
/// operational claim.
#[test]
fn nightly_prediction_fits_the_window() {
    let reg = RegionRegistry::new();
    let report = CombinedWorkflow::default().run(&reg, Scale::default());
    assert_eq!(report.n_tasks, 9180);
    assert!(report.within_window, "nightly workload must fit the window");
    assert!(report.slurm.utilization > 0.85, "deployed utilization {}", report.slurm.utilization);
}

/// The calibration workload (15,300 sims) also ran nightly.
#[test]
fn nightly_calibration_fits_the_window() {
    let reg = RegionRegistry::new();
    let wf = CombinedWorkflow { workload: WorkloadSpec::calibration(), ..Default::default() };
    let report = wf.run(&reg, Scale::default());
    assert_eq!(report.n_tasks, 15_300);
    assert!(
        report.slurm.completed as f64 > 0.95 * report.n_tasks as f64,
        "completed {}",
        report.slurm.completed
    );
}

/// FFDT-DC (deployed) beats arrival-order NFDT-DC (initial config) on
/// the real national workload — the Fig. 9 headline, at full size.
#[test]
fn deployed_schedule_beats_initial_on_national_workload() {
    let reg = RegionRegistry::new();
    let tasks = WorkloadSpec::prediction().generate(&reg, Scale::default());
    let bound = |_r: usize| 16usize;
    let machine = ClusterSpec::bridges().nodes;

    let initial = pack_arrival(&tasks, machine, bound, PackAlgo::NfdtDc);
    initial.validate(&tasks, bound).unwrap();
    let initial_stats = initial.execute(&tasks);

    let deployed = pack(&tasks, machine, bound, PackAlgo::FfdtDc);
    deployed.validate(&tasks, bound).unwrap();
    let order: Vec<usize> = deployed.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
    let deployed_stats = SlurmSim::new(ClusterSpec::bridges()).run(&tasks, &order, bound);

    assert!(deployed_stats.utilization > 0.9, "deployed {}", deployed_stats.utilization);
    assert!(
        deployed_stats.utilization - initial_stats.utilization > 0.3,
        "gap: {} vs {}",
        deployed_stats.utilization,
        initial_stats.utilization
    );
}

/// Every simulation of a packed workload is scheduled exactly once and
/// respects whole-node allocation — for both packers, across workloads.
#[test]
fn packers_place_every_task_once() {
    let reg = RegionRegistry::new();
    for spec in [WorkloadSpec::economic(), WorkloadSpec::calibration()] {
        let tasks = spec.generate(&reg, Scale::default());
        for algo in [PackAlgo::NfdtDc, PackAlgo::FfdtDc] {
            let plan = pack(&tasks, 720, |_| 8, algo);
            plan.validate(&tasks, |_| 8).unwrap();
            assert_eq!(plan.n_tasks(), tasks.len());
        }
    }
}

/// Table-I simulation counts from the actual design machinery.
#[test]
fn table_i_counts_from_designs() {
    let econ = StudyDesign {
        cells: FactorialDesign::paper_economic().expand(&CellConfig::default()),
        replicates: 15,
    };
    assert_eq!(econ.n_simulations(51), 9180);
    let calib = StudyDesign::lhs_prior(300, &CellConfig::default(), 0);
    assert_eq!(calib.n_simulations(51), 15_300);
}

/// The combined workflow's data ledger matches Table II's directions:
/// configs go out, only summaries come home, raw output stays remote.
#[test]
fn data_flows_match_table_ii() {
    use epiflow::hpcsim::Site;
    let reg = RegionRegistry::new();
    let report = CombinedWorkflow::default().run(&reg, Scale::default());
    let out = report.transfers.bytes_moved(Site::Home, Site::Remote);
    let back = report.transfers.bytes_moved(Site::Remote, Site::Home);
    assert!(out > 100_000_000, "daily configs ≥ 100 MB, got {out}");
    assert!(out < 10_000_000_000u64, "daily configs ≤ ~9 GB, got {out}");
    assert_eq!(back, report.summary_bytes);
    assert!(report.raw_output_bytes > 100 * report.summary_bytes);
}

/// The remote window is respected: remote-site timeline events fit in
/// 10 hours.
#[test]
fn remote_steps_fit_nightly_window() {
    use epiflow::hpcsim::Site;
    let reg = RegionRegistry::new();
    let report = CombinedWorkflow::default().run(&reg, Scale::default());
    let remote_secs: f64 =
        report.timeline.iter().filter(|e| e.site == Site::Remote).map(|e| e.duration_secs).sum();
    assert!(remote_secs <= 10.0 * 3600.0, "remote work {remote_secs} s exceeds the 10 h window");
}

/// Workload runtime heterogeneity matches Fig. 8: the slowest region's
/// tasks are an order of magnitude longer than the fastest's.
#[test]
fn workload_runtime_spread() {
    let reg = RegionRegistry::new();
    let tasks = WorkloadSpec::prediction().generate(&reg, Scale::default());
    let max = tasks.iter().map(|t| t.est_secs).fold(f64::MIN, f64::max);
    let min = tasks.iter().map(|t| t.est_secs).fold(f64::MAX, f64::min);
    assert!(max / min > 10.0, "spread {max}/{min}");
}
