//! Chaos-campaign acceptance suite: cross-cluster failover, durable
//! journals, and the parallel fault-intensity sweep.
//!
//! The headline scenario is a *total remote-cluster loss* two hours
//! into the nightly window. The classic engine can only shed cells;
//! the failover engine re-plans the night onto the home cluster at its
//! slower contended rate and still delivers every cell before 8 am.
//! Killing the cycle mid-failover and resuming from any persisted
//! journal prefix — including one with a torn trailing record — must
//! yield a byte-identical report.

use epiflow::core::CombinedWorkflow;
use epiflow::hpcsim::cluster::Site;
use epiflow::hpcsim::slurm::NodeFailure;
use epiflow::hpcsim::task::WorkloadSpec;
use epiflow::orchestrator::{
    CampaignSpec, DeadlinePolicy, EngineEvent, FailoverPolicy, FaultPlan, FaultProfile, Journal,
    JournalWriter, NightlySpec,
};
use epiflow::surveillance::{RegionRegistry, Scale};
use std::fs;

/// A 204-task night (the home cluster can absorb this much) that loses
/// every remote node a minute into the execute step — early enough
/// that nothing can finish remotely. `failover` selects the engine
/// under test; everything else is identical.
fn remote_kill_workflow(failover: bool) -> CombinedWorkflow {
    CombinedWorkflow {
        workload: WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() },
        faults: FaultPlan {
            seed: 42,
            node_failures: vec![NodeFailure { at_secs: 60.0, nodes: 720 }],
            ..FaultPlan::default()
        },
        deadline: DeadlinePolicy { shed_cells: true },
        failover: if failover { FailoverPolicy::on() } else { FailoverPolicy::default() },
        ..Default::default()
    }
}

#[test]
fn remote_kill_fails_over_to_home_with_zero_shed() {
    let reg = RegionRegistry::new();

    // Classic engine: the dead remote cluster forces shedding.
    let classic = remote_kill_workflow(false).engine(&reg, Scale::default()).run();
    assert!(
        !classic.report.dropped_cells.is_empty(),
        "without failover a total remote loss must shed cells"
    );

    // Failover engine: the same night re-plans onto the home cluster
    // and finishes whole.
    let run = remote_kill_workflow(true).engine(&reg, Scale::default()).run();
    assert!(run.report.within_window, "failover must deliver the night inside the window");
    assert!(run.report.dropped_cells.is_empty(), "failover must shed zero cells");
    assert!(run.report.failed_steps.is_empty());

    // The re-plan is visible end to end: a FailedOver event, the step
    // named in the report, and the execute step on the Home timeline.
    assert!(
        run.events.iter().any(|e| matches!(
            e,
            EngineEvent::FailedOver { from: Site::Remote, to: Site::Home, .. }
        )),
        "expected a FailedOver event: {:?}",
        run.events
    );
    assert!(run.report.failover_steps.iter().any(|s| s.contains("Slurm")));
    assert!(
        run.report
            .timeline
            .iter()
            .any(|t| t.site == Site::Home && t.label.starts_with("Slurm job arrays")),
        "execute step must appear on the Home timeline"
    );
    // All simulated work ran: nothing unstarted, nothing silently lost.
    let slurm = run.report.slurm.as_ref().expect("execute step ran");
    assert_eq!(slurm.unstarted, 0);
    assert_eq!(run.report.n_tasks, 204);
}

#[test]
fn kill_and_resume_mid_failover_is_byte_identical_for_every_prefix() {
    let reg = RegionRegistry::new();
    let engine = remote_kill_workflow(true).engine(&reg, Scale::default());
    let full = engine.run();
    let full_json = serde_json::to_string(&full.report).unwrap();
    assert_eq!(full.journal.entries.len(), 7, "all seven Fig.-2 steps completed");

    let dir = std::env::temp_dir().join(format!("epiflow-chaos-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    for k in 0..=full.journal.entries.len() {
        // "Kill" the cycle after k completions; what survives is the
        // atomically-persisted JSONL journal on disk.
        let path = dir.join(format!("journal-{k}.jsonl"));
        full.journal.prefix(k).save_atomic(&path).unwrap();
        let (recovered, torn) = Journal::recover_jsonl(&fs::read_to_string(&path).unwrap())
            .expect("persisted journal recovers");
        assert!(!torn, "atomic save never leaves a torn record");
        let resumed = engine.resume(&recovered);
        assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            full_json,
            "resume after {k} completions must be byte-identical"
        );
        assert_eq!(
            resumed.live_steps.len(),
            full.journal.entries.len() - k,
            "resume after {k} completions must not redo finished steps"
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_trailing_record_recovers_and_resumes_identically() {
    let reg = RegionRegistry::new();
    let engine = remote_kill_workflow(true).engine(&reg, Scale::default());
    let full = engine.run();
    let full_json = serde_json::to_string(&full.report).unwrap();

    let dir = std::env::temp_dir().join(format!("epiflow-torn-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");

    // Commit the first four steps through the write-ahead writer, then
    // simulate a crash mid-write of the fifth: append half a record.
    let mut writer = JournalWriter::create(&path).unwrap();
    for entry in &full.journal.entries[..4] {
        writer.commit(entry).unwrap();
    }
    drop(writer);
    let fifth = serde_json::to_string(&full.journal.entries[4]).unwrap();
    let mut bytes = fs::read(&path).unwrap();
    bytes.extend_from_slice(&fifth.as_bytes()[..fifth.len() / 2]);
    fs::write(&path, &bytes).unwrap();

    let (recovered, torn) =
        Journal::recover_jsonl(&fs::read_to_string(&path).unwrap()).expect("recovery succeeds");
    assert!(torn, "the half-written fifth record is detected and dropped");
    assert_eq!(recovered.entries.len(), 4, "the four committed steps survive");
    let resumed = engine.resume(&recovered);
    assert_eq!(
        serde_json::to_string(&resumed.report).unwrap(),
        full_json,
        "resume from a torn journal must be byte-identical"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_sweep_is_deterministic_and_quiet_nights_always_succeed() {
    let reg = RegionRegistry::new();
    let wf = remote_kill_workflow(true);
    let engine = wf.engine(&reg, Scale::default());
    let spec = CampaignSpec {
        nightly: NightlySpec { failover: FailoverPolicy::on(), ..NightlySpec::default() },
        tasks: engine.env.tasks.clone(),
        region_rows: engine.env.region_rows.clone(),
        deadline: DeadlinePolicy { shed_cells: true },
        intensities: vec![0.0, 0.5, 1.0],
        nights_per_intensity: 6,
        base_seed: 2021,
        profile: FaultProfile::Mixed,
    };

    let report = spec.run();
    assert_eq!(report.per_intensity.len(), 3);
    assert_eq!(report.outcomes.len(), 18);

    // Quiet nights always fit the window.
    let quiet = &report.per_intensity[0];
    assert_eq!(quiet.successes, 6);
    assert!((quiet.success_rate - 1.0).abs() < 1e-12);
    assert_eq!(quiet.failovers + quiet.hedges + quiet.reroutes + quiet.retries, 0);
    assert_eq!(quiet.shed_cells_total, 0);

    // Stress shows up in the counters as intensity rises, and the
    // failover engine keeps shedding at zero across the whole sweep.
    let stressed = &report.per_intensity[2];
    assert!(
        stressed.failovers + stressed.hedges + stressed.reroutes + stressed.retries > 0,
        "intensity 1.0 must exercise the resilience machinery: {stressed:?}"
    );
    for i in &report.per_intensity {
        assert!(i.mean_cycle_hours > 0.0);
    }

    // Same seed ⇒ same campaign, however the rayon pool schedules it.
    let again = spec.run();
    assert_eq!(report, again, "campaigns are deterministic for a fixed seed");
}
