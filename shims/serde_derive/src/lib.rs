//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the offline `serde` shim.
//!
//! The build container has no access to a crates registry, so `syn` /
//! `quote` are unavailable; this macro walks the raw
//! [`proc_macro::TokenStream`] instead. It supports exactly the shapes
//! the workspace uses:
//!
//! * structs with named fields (`#[serde(default)]` honored per field);
//! * enums with unit variants (serialized as the variant-name string);
//! * internally tagged enums — `#[serde(tag = "...", rename_all =
//!   "snake_case")]` — with unit and named-field variants.
//!
//! Tuple structs, tuple variants, generics, and the rest of serde's
//! attribute language are intentionally unsupported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all_snake: bool,
}

struct Field {
    name: String,
    has_default: bool,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<(String, Vec<Field>)>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

/// Extract `tag = "..."` / `rename_all = "..."` / `default` markers
/// from the token list of one `serde(...)` attribute body.
fn parse_serde_attr(tokens: Vec<TokenTree>, attrs: &mut ContainerAttrs, default: &mut bool) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                if key == "default" {
                    *default = true;
                    i += 1;
                } else if i + 2 < tokens.len() {
                    if let TokenTree::Literal(lit) = &tokens[i + 2] {
                        let val = lit.to_string().trim_matches('"').to_string();
                        match key.as_str() {
                            "tag" => attrs.tag = Some(val),
                            "rename_all" => {
                                assert!(
                                    val == "snake_case",
                                    "serde shim: only rename_all = \"snake_case\" is supported"
                                );
                                attrs.rename_all_snake = true;
                            }
                            other => panic!("serde shim: unsupported serde attribute `{other}`"),
                        }
                    }
                    i += 3;
                } else {
                    panic!("serde shim: unsupported serde attribute form near `{key}`");
                }
            }
            _ => i += 1, // commas
        }
    }
}

/// Consume leading `#[...]` attributes starting at `*i`, folding any
/// `#[serde(...)]` contents into `attrs` / `default`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize, attrs: &mut ContainerAttrs, default: &mut bool) {
    while *i < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            panic!("serde shim: `#` not followed by attribute group")
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(body)) = inner.get(1) {
                    parse_serde_attr(body.stream().into_iter().collect(), attrs, default);
                }
            }
        }
        *i += 2;
    }
}

/// Skip `pub`, `pub(crate)`, etc.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse the named fields inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = ContainerAttrs::default();
        let mut has_default = false;
        skip_attrs(&tokens, &mut i, &mut ignored, &mut has_default);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde shim: expected field name, got `{}`", tokens[i])
        };
        let name = name.to_string();
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, got `{other}`"),
        }
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, has_default });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Vec<Field>)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = ContainerAttrs::default();
        let mut ignored_default = false;
        skip_attrs(&tokens, &mut i, &mut ignored, &mut ignored_default);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde shim: expected variant name, got `{}`", tokens[i])
        };
        let name = name.to_string();
        i += 1;
        let mut fields = Vec::new();
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = parse_named_fields(g);
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("serde shim: tuple variant `{name}` is unsupported")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut unused_default = false;
    let mut i = 0;
    skip_attrs(&tokens, &mut i, &mut attrs, &mut unused_default);
    skip_visibility(&tokens, &mut i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("serde shim: expected `struct` or `enum`, got `{}`", tokens[i])
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde shim: expected type name, got `{}`", tokens[i])
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(p.as_char() != '<', "serde shim: generic type `{name}` is unsupported");
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        panic!("serde shim: `{name}` has no braced body (tuple/unit types unsupported)")
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "serde shim: `{name}` must have named fields or variants"
    );
    let body = match kw.as_str() {
        "struct" => Body::Struct(parse_named_fields(body)),
        "enum" => Body::Enum(parse_variants(body)),
        other => panic!("serde shim: cannot derive for `{other}`"),
    };
    Input { name, attrs, body }
}

fn variant_wire_name(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "m.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut m: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Map(m)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let wire = variant_wire_name(&input.attrs, vname);
                if fields.is_empty() {
                    if let Some(tag) = &input.attrs.tag {
                        arms.push_str(&format!(
                            "{name}::{vname} => serde::Value::Map(vec![(\"{tag}\".to_string(), \
                             serde::Value::Str(\"{wire}\".to_string()))]),\n"
                        ));
                    } else {
                        arms.push_str(&format!(
                            "{name}::{vname} => serde::Value::Str(\"{wire}\".to_string()),\n"
                        ));
                    }
                } else {
                    let tag = input.attrs.tag.as_deref().unwrap_or_else(|| {
                        panic!("serde shim: data-carrying enum `{name}` needs #[serde(tag = ...)]")
                    });
                    let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                    let mut pushes = String::new();
                    for f in fields {
                        pushes.push_str(&format!(
                            "m.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n",
                            n = f.name
                        ));
                    }
                    arms.push_str(&format!(
                        "{name}::{vname} {{ {pat} }} => {{\n\
                         let mut m: Vec<(String, serde::Value)> = Vec::new();\n\
                         m.push((\"{tag}\".to_string(), serde::Value::Str(\"{wire}\".to_string())));\n\
                         {pushes}serde::Value::Map(m)\n}}\n",
                        pat = pats.join(", ")
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_field_extract(fields: &[Field], type_name: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let n = &f.name;
        if f.has_default {
            inits.push_str(&format!(
                "{n}: match serde::map_get(m, \"{n}\") {{\n\
                 Some(x) => serde::Deserialize::from_value(x)?,\n\
                 None => Default::default(),\n}},\n"
            ));
        } else {
            inits.push_str(&format!(
                "{n}: match serde::map_get(m, \"{n}\") {{\n\
                 Some(x) => serde::Deserialize::from_value(x)?,\n\
                 None => return Err(serde::DeError::missing(\"{n}\", \"{type_name}\")),\n}},\n"
            ));
        }
    }
    inits
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => {
            let inits = gen_field_extract(fields, name);
            format!(
                "let m = v.as_map().ok_or_else(|| serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Body::Enum(variants) => {
            if let Some(tag) = &input.attrs.tag {
                let mut arms = String::new();
                for (vname, fields) in variants {
                    let wire = variant_wire_name(&input.attrs, vname);
                    if fields.is_empty() {
                        arms.push_str(&format!("\"{wire}\" => Ok({name}::{vname}),\n"));
                    } else {
                        let inits = gen_field_extract(fields, name);
                        arms.push_str(&format!(
                            "\"{wire}\" => Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
                format!(
                    "let m = v.as_map().ok_or_else(|| serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                     let tag = serde::map_get(m, \"{tag}\")\n\
                         .and_then(serde::Value::as_str)\n\
                         .ok_or_else(|| serde::DeError::missing(\"{tag}\", \"{name}\"))?;\n\
                     match tag {{\n{arms}\
                     other => Err(serde::DeError::unknown_variant(other, \"{name}\")),\n}}"
                )
            } else {
                let mut arms = String::new();
                for (vname, fields) in variants {
                    assert!(
                        fields.is_empty(),
                        "serde shim: data-carrying enum `{name}` needs #[serde(tag = ...)]"
                    );
                    let wire = variant_wire_name(&input.attrs, vname);
                    arms.push_str(&format!("\"{wire}\" => Ok({name}::{vname}),\n"));
                }
                format!(
                    "let s = v.as_str().ok_or_else(|| serde::DeError::expected(\"string\", \"{name}\"))?;\n\
                     match s {{\n{arms}\
                     other => Err(serde::DeError::unknown_variant(other, \"{name}\")),\n}}"
                )
            }
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde shim: generated Deserialize impl parses")
}
