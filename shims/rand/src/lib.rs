//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build container has no network access and no vendored registry,
//! so the workspace supplies a small, self-contained implementation of
//! the APIs it actually calls: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`random_range`, `random_bool`, `random`),
//! and [`rngs::StdRng`] (xoshiro256++). The statistical quality is more
//! than adequate for simulation workloads; the API contract matches
//! rand 0.9 for every call site in the repo so the real crate can be
//! swapped back in when a registry is available.

/// The core trait every generator implements (rand 0.9 shape).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, including the `seed_from_u64` convenience.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (same approach as
    /// the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // Widening-multiply rejection-free mapping; bias is
                // negligible for simulation spans (< 2^64).
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample from empty range");
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::random`].
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing extension trait (blanket-implemented like rand 0.9).
pub trait Rng: RngCore {
    #[inline]
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::standard_sample(self) < p
    }

    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (fast, 256-bit state, fine
    /// statistical quality for simulation).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                let n = rem.len();
                rem.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.random_range(0..60);
            assert!(x < 60);
            let y: i32 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
