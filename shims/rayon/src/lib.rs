//! Offline shim for the subset of the `rayon` API used by this
//! workspace: `slice.par_iter().map(f).collect::<Vec<_>>()`,
//! `slice.par_iter().map_init(init, f).collect::<Vec<_>>()`,
//! `collection.into_par_iter().map(f).collect::<Vec<_>>()`, and
//! `slice.par_iter_mut().for_each(f)`.
//!
//! The build container has no registry access, so this crate provides
//! a genuinely parallel implementation on `std::thread::scope`: the
//! input is chunked across `available_parallelism()` workers, each
//! worker maps its chunk, and results are concatenated in input order
//! (the same ordering guarantee rayon's indexed collect gives).

use std::num::NonZeroUsize;

fn worker_count(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(items)
}

/// Borrowed parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

/// `par_iter().map(f)` — the only adapter the workspace uses.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

/// `par_iter().map_init(init, f)` — per-worker reusable state.
pub struct ParSliceMapInit<'a, T, I, F> {
    slice: &'a [T],
    init: I,
    f: F,
}

impl<'a, T: Sync> ParSlice<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParSliceMap { slice: self.slice, f }
    }

    /// Like rayon's `map_init`: each worker calls `init` once and
    /// threads the resulting state through every element it processes
    /// (scratch-buffer pooling across items, not just within one).
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParSliceMapInit<'a, T, I, F>
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
    {
        ParSliceMapInit { slice: self.slice, init, f }
    }
}

impl<'a, T: Sync, I, F> ParSliceMapInit<'a, T, I, F> {
    pub fn collect<C, S, R>(self) -> C
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let workers = worker_count(n);
        if workers <= 1 {
            let mut state = (self.init)();
            return self.slice.iter().map(|x| (self.f)(&mut state, x)).collect();
        }
        let chunk = n.div_ceil(workers);
        let init = &self.init;
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move || {
                        let mut state = init();
                        c.iter().map(|x| f(&mut state, x)).collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.slice.len();
        let workers = worker_count(n);
        if workers <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

/// Owned parallel iterator (ranges, vectors).
pub struct ParItems<T> {
    items: Vec<T>,
}

pub struct ParItemsMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParItems<T> {
    pub fn map<R, F>(self, f: F) -> ParItemsMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParItemsMap { items: self.items, f }
    }
}

impl<T: Send, F> ParItemsMap<T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let workers = worker_count(n);
        if workers <= 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut rest = self.items;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        chunks.push(rest);
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

/// Exclusive parallel iterator over a mutable slice (`par_iter_mut`).
///
/// Used by the epihiper engine to let each worker fill its own
/// partition workspace (events, Gillespie scratch) in place, so the
/// per-tick scan reuses allocations instead of collecting fresh
/// vectors.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Apply `f` to every element, in parallel, like rayon's
    /// `IndexedParallelIterator::for_each`.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.slice.len();
        let workers = worker_count(n);
        if workers <= 1 {
            for x in self.slice.iter_mut() {
                f(x);
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks_mut(chunk)
                .map(|c| {
                    s.spawn(move || {
                        for x in c {
                            f(x);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("rayon-shim worker panicked");
            }
        });
    }
}

/// `.par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self }
    }
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParItems<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParItems<T> {
        ParItems { items: self }
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParItems<$t> {
                ParItems { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize, i32, i64);

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2 * i as u64);
        }
    }

    #[test]
    fn into_par_iter_on_range() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut xs: Vec<u64> = (0..10_000).collect();
        xs.par_iter_mut().for_each(|x| *x += 1);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1);
        }
        let mut empty: Vec<u64> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x += 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_init_preserves_order_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let xs: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = xs
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::new()
                },
                |buf, &x| {
                    buf.push(x);
                    x * 3
                },
            )
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3 * i as u64);
        }
        // One init per worker, not per item.
        assert!(inits.load(Ordering::Relaxed) <= super::worker_count(xs.len()));
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::<u32>::new().par_iter().map(|x| *x).collect();
        assert!(none.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
