//! Offline shim for the subset of the `proptest` API used by this
//! workspace: the [`proptest!`] macro, range / tuple / `Just` /
//! `collection::vec` strategies, `prop_map` / `prop_flat_map`,
//! `any::<T>()`, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test's source location), so failures reproduce across runs. There is
//! no shrinking: a failing case panics with the drawn inputs' debug
//! representation via the underlying `assert!` message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

pub use rand::SeedableRng as ShimSeedableRng;

/// Runner configuration (`with_cases` is all the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Full-domain strategy for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random_range(-1.0e9..1.0e9)
    }
}

pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: core::marker::PhantomData }
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Acceptable size arguments for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of values from `element` with a length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Build the per-test RNG. Seeded by source location so each test gets
/// a stable, distinct stream.
pub fn test_rng(file: &str, line: u32, case: u32) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in file.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h = (h ^ line as u64).wrapping_mul(0x1000_0000_01b3);
    h = (h ^ case as u64).wrapping_mul(0x1000_0000_01b3);
    <StdRng as rand::SeedableRng>::seed_from_u64(h)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// The test-harness macro. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            #[allow(clippy::redundant_closure_call)]
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_rng(concat!(file!(), "::", stringify!($name)), line!(), case);
                let ( $($pat,)+ ) = (
                    $( $crate::Strategy::sample(&$strat, &mut rng), )+
                );
                $body
            }
        }
    )*};
}

pub mod prelude {
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..10, 2..6), w in prop::collection::vec(0u32..10, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn flat_map_dependent((n, xs) in (1u32..20).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 0..30)))) {
            for x in xs {
                prop_assert!(x < n);
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a: u64 = {
            let mut rng = crate::test_rng("f", 1, 0);
            crate::Strategy::sample(&(0u64..1000), &mut rng)
        };
        let b: u64 = {
            let mut rng = crate::test_rng("f", 1, 0);
            crate::Strategy::sample(&(0u64..1000), &mut rng)
        };
        assert_eq!(a, b);
    }
}
