//! Offline shim for the subset of `serde` used by this workspace.
//!
//! The build container has no registry access, so instead of the real
//! serde's `Serializer`/`Deserializer` visitor architecture this shim
//! round-trips every type through an owned [`Value`] tree; the
//! companion `serde_json` shim renders/parses that tree as JSON, and
//! the hand-rolled derive (`serde_derive_shim`) generates
//! [`Serialize::to_value`] / [`Deserialize::from_value`] impls. The
//! call-site API — `use serde::{Deserialize, Serialize}`,
//! `#[derive(Serialize, Deserialize)]`, `#[serde(tag, rename_all,
//! default)]`, `serde_json::to_string`/`from_str` — matches the real
//! crates so they can be swapped back in when a registry is available.

pub use serde_derive_shim::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

/// A JSON number, preserving integer exactness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I(x) => x as f64,
            Number::U(x) => x as f64,
            Number::F(x) => x,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I(x) => Some(x),
            Number::U(x) => i64::try_from(x).ok(),
            Number::F(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(x as i64),
            Number::F(_) => None,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I(x) => u64::try_from(x).ok(),
            Number::U(x) => Some(x),
            Number::F(x) if x.fract() == 0.0 && (0.0..1.9e19).contains(&x) => Some(x as u64),
            Number::F(_) => None,
        }
    }
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<Number> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Look up a key in a [`Value::Map`] slice (helper for derived code).
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    pub fn missing(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization to the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_serde_int {
    (signed: $($t:ty),*; unsigned: $($u:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value { Value::Num(Number::I(*self as i64)) }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let n = v.as_num().ok_or_else(|| DeError::expected("number", stringify!($t)))?;
                    let x = n.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                    <$t>::try_from(x).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
                }
            }
        )*
        $(
            impl Serialize for $u {
                fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
            }
            impl Deserialize for $u {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let n = v.as_num().ok_or_else(|| DeError::expected("number", stringify!($u)))?;
                    let x = n.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($u)))?;
                    <$u>::try_from(x).map_err(|_| DeError::expected("in-range integer", stringify!($u)))
                }
            }
        )*
    };
}

impl_serde_int!(signed: i8, i16, i32, i64, isize; unsigned: u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_num().map(Number::as_f64).ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_num().map(|n| n.as_f64() as f32).ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) => xs.iter().map(Deserialize::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(xs) if xs.len() == N => {
                let items: Vec<T> =
                    xs.iter().map(Deserialize::from_value).collect::<Result<_, _>>()?;
                items.try_into().map_err(|_| DeError::expected("fixed-size array", "[T; N]"))
            }
            _ => Err(DeError::expected("sequence of exact length", "[T; N]")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:literal)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(xs) if xs.len() == $len => Ok((
                        $($name::from_value(&xs[$idx])?,)+
                    )),
                    _ => Err(DeError::expected("tuple sequence", "tuple")),
                }
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4)
);

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("serde shim: non-string map key {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            _ => Err(DeError::expected("map", "BTreeMap")),
        }
    }
}

/// `HashMap` serializes with keys sorted, so the emitted bytes are
/// deterministic regardless of hasher state — a requirement for the
/// checksummed snapshot sections built on top of this shim.
impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            _ => Err(DeError::expected("map", "HashMap")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let t = (3u32, 4u32);
        assert_eq!(<(u32, u32)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn hashmap_round_trips_with_sorted_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert("zeta".to_string(), 1.5f64);
        m.insert("alpha".to_string(), -2.0);
        let v = m.to_value();
        match &v {
            Value::Map(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["alpha", "zeta"], "keys must serialize sorted");
            }
            other => panic!("expected map, got {other:?}"),
        }
        let back = std::collections::HashMap::<String, f64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_rejected() {
        let big = Value::Num(Number::U(300));
        assert!(u8::from_value(&big).is_err());
        let neg = Value::Num(Number::I(-1));
        assert!(u32::from_value(&neg).is_err());
    }
}
