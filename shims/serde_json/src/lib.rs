//! Offline shim for the subset of `serde_json` used by this workspace:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the
//! `serde` shim's [`Value`] tree.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so a
//! serialize → parse cycle reproduces every finite `f64` exactly;
//! integers keep 64-bit exactness through the [`serde::Number`] split.

use serde::{DeError, Deserialize, Number, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---- emitter ---------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(Number::I(x)) => out.push_str(&x.to_string()),
        Value::Num(Number::U(x)) => out.push_str(&x.to_string()),
        Value::Num(Number::F(x)) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep a float-looking token so parsing restores F.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // serde_json's lossy default
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                emit(x, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(x, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'{' => self.parse_map(),
            b'[' => self.parse_seq(),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short unicode escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad unicode escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad unicode escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| self.err("truncated utf-8"))?;
                    let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(x)));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(x)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Num(Number::F(x)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(xs));
        }
        loop {
            xs.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            m.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a JSON string into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for f in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-8, 12345.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "via {s}");
        }
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), v);
        let opt: Option<Vec<f64>> = Some(vec![1.5, -2.25]);
        let s = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<Vec<f64>>>(&s).unwrap(), opt);
    }

    #[test]
    fn strings_escape() {
        let s = "line\n\"quoted\"\tüñí".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
