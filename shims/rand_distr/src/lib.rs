//! Offline shim for the subset of `rand_distr` 0.5 used by this
//! workspace: [`Distribution`], [`StandardNormal`], and [`Gamma`].
//!
//! See the `rand` shim for why this exists (no registry access in the
//! build container). Sampling algorithms are the standard ones:
//! Box–Muller-free polar method for normals and Marsaglia–Tsang for
//! gammas, both adequate for the repo's simulation workloads.

use rand::{Rng, RngCore};

/// A sampleable distribution (rand_distr shape).
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal N(0, 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: never zero, so ln() below is finite.
    ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
}

#[inline]
fn sample_standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Marsaglia polar method; draws until the pair lands in the unit
    // disk (probability π/4 per attempt).
    loop {
        let u = 2.0 * unit_open(rng) - 1.0;
        let v = 2.0 * unit_open(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl Distribution<f64> for StandardNormal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_standard_normal(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        sample_standard_normal(rng) as f32
    }
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    ShapeTooSmall,
    ScaleTooSmall,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ShapeTooSmall => write!(f, "gamma shape must be positive"),
            Error::ScaleTooSmall => write!(f, "gamma scale must be positive"),
        }
    }
}

impl std::error::Error for Error {}

/// The Gamma(shape k, scale θ) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if shape.is_nan() || shape <= 0.0 {
            return Err(Error::ShapeTooSmall);
        }
        if scale.is_nan() || scale <= 0.0 {
            return Err(Error::ScaleTooSmall);
        }
        Ok(Gamma { shape, scale })
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang (2000). For k < 1, boost via
        // Gamma(k) = Gamma(k+1) · U^(1/k).
        let (k, boost) = if self.shape < 1.0 {
            let u = unit_open(rng);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = sample_standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = unit_open(rng);
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * boost * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(12);
        // Gamma(20, 1/20): mean 1, var 1/20 — the shape used in the
        // surveillance ground-truth noise model.
        let g = Gamma::new(20.0, 1.0 / 20.0).unwrap();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_small_shape() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = Gamma::new(0.5, 2.0).unwrap();
        let n = 50_000;
        let mean = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}"); // k·θ = 1
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }
}
