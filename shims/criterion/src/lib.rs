//! Offline shim for the subset of the `criterion` API used by this
//! workspace's benches: `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function` / `benchmark_group`, `BenchmarkId`,
//! `Throughput`, and `Bencher::iter`.
//!
//! Measurement is a simple warmup + timed-batch loop printing
//! mean/min/max per iteration — not criterion's statistics, but enough
//! to compare orders of magnitude and keep `cargo bench` working
//! without registry access. When invoked by `cargo test` (which passes
//! `--test` to harness-less bench binaries) the runner exits
//! immediately so benches never slow the test suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declared throughput (accepted and echoed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Time `f`, printing mean/min/max nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration (also primes caches/allocations).
        black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
            if started.elapsed() > self.budget {
                break;
            }
        }
        let n = times.len() as f64;
        let mean = times.iter().sum::<f64>() / n;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "    time: mean {} / min {} / max {}  ({} samples)",
            fmt_secs(mean),
            fmt_secs(min),
            fmt_secs(max),
            times.len()
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("{}/{}", self.name, id.label);
        let mut b = Bencher { samples: self.sample_size, budget: self.criterion.budget };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        println!("{}/{}", self.name, id.label);
        let mut b = Bencher { samples: self.sample_size, budget: self.criterion.budget };
        f(&mut b, input);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Duration::from_secs(5) }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{name}");
        let mut b = Bencher { samples: 20, budget: self.budget };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 20 }
    }

    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// True when the binary was invoked by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` to harness-less benches).
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                return;
            }
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "x").label, "f/x");
        assert_eq!(BenchmarkId::from_parameter(12).label, "12");
    }
}
