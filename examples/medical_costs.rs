//! Case study 1 — the medical costs of COVID-19 (the economic
//! workflow, Fig. 3).
//!
//! Runs the paper's 12-cell factorial design (2 VHI compliances × 3
//! lockdown durations × 2 lockdown compliances) with replicates on a
//! set of regions, evaluates the medical-cost model on each cell, and
//! prints the cost matrix — the outcome table policymakers received.
//!
//! ```bash
//! cargo run --release --example medical_costs
//! ```

use epiflow::core::{CellConfig, CounterfactualWorkflow, FactorialDesign};
use epiflow::surveillance::{RegionRegistry, Scale};
use epiflow::synthpop::{build_region, BuildConfig};

fn main() {
    let registry = RegionRegistry::new();
    // A manageable multi-state panel; the paper runs all 51 regions.
    let panel = ["VA", "MD", "WV"];
    let scale = Scale::one_per(8000.0);
    // Scale factor to report costs in real-population dollars.
    let dollars_scale = 8000.0;

    let workflow = CounterfactualWorkflow {
        design: FactorialDesign::paper_economic(),
        base: CellConfig {
            days: 150,
            transmissibility: 0.30,
            sh_start: 45,
            sc_start: 30,
            initial_infections: 10,
            ..Default::default()
        },
        replicates: 5,
        n_partitions: 4,
        ..Default::default()
    };

    println!(
        "Economic workflow: {} cells × {} regions × {} replicates = {} simulations\n",
        12,
        panel.len(),
        workflow.replicates,
        12 * panel.len() * workflow.replicates as usize
    );
    println!(
        "{:>5} {:>5} {:>7} {:>7} {:>12} {:>10} {:>8} {:>16}",
        "cell", "VHI", "SHdays", "SHcomp", "infections", "hosp", "vent", "medical cost"
    );

    // Aggregate each cell's cost across the panel.
    let cells = workflow.design.expand(&workflow.base);
    let mut totals = vec![(0.0f64, 0.0f64, 0u64, 0u64); cells.len()];
    for abbrev in panel {
        let id = registry.by_abbrev(abbrev).expect("known region").id;
        let data =
            build_region(&registry, id, &BuildConfig { scale, seed: 11, ..Default::default() });
        for row in workflow.run(&data) {
            let slot = &mut totals[row.cell.cell as usize];
            slot.0 += row.mean_cost.total();
            slot.1 += row.mean_infections;
            slot.2 += row.mean_cost.n_hospitalized;
            slot.3 += row.mean_cost.n_ventilated;
        }
    }

    let mut best: Option<(usize, f64)> = None;
    let mut worst: Option<(usize, f64)> = None;
    for (i, cell) in cells.iter().enumerate() {
        let (cost, infections, hosp, vent) = totals[i];
        let real_cost = cost * dollars_scale;
        println!(
            "{:>5} {:>5.1} {:>7} {:>7.1} {:>12.0} {:>10} {:>8} {:>15.1}M",
            cell.cell,
            cell.vhi_compliance,
            cell.sh_end - cell.sh_start,
            cell.sh_compliance,
            infections * dollars_scale,
            hosp as f64 * dollars_scale,
            vent as f64 * dollars_scale,
            real_cost / 1e6
        );
        if best.is_none() || real_cost < best.unwrap().1 {
            best = Some((i, real_cost));
        }
        if worst.is_none() || real_cost > worst.unwrap().1 {
            worst = Some((i, real_cost));
        }
    }

    let (bi, bc) = best.unwrap();
    let (wi, wc) = worst.unwrap();
    println!(
        "\ncheapest scenario: cell {} (VHI {:.0}%, SH {} d at {:.0}%) — ${:.1}M",
        cells[bi].cell,
        cells[bi].vhi_compliance * 100.0,
        cells[bi].sh_end - cells[bi].sh_start,
        cells[bi].sh_compliance * 100.0,
        bc / 1e6
    );
    println!(
        "costliest scenario: cell {} (VHI {:.0}%, SH {} d at {:.0}%) — ${:.1}M ({:.1}× the cheapest)",
        cells[wi].cell,
        cells[wi].vhi_compliance * 100.0,
        cells[wi].sh_end - cells[wi].sh_start,
        cells[wi].sh_compliance * 100.0,
        wc / 1e6,
        wc / bc
    );
    println!(
        "\n(the paper's [9] reports national medical costs under these NPI scenarios;\n\
         the monotone NPI-strictness → cost gradient is the reproduction target)"
    );
}
