//! The combined nightly workflow (Figs. 1–2): orchestrating a national
//! calibration-then-prediction cycle across the home and remote
//! clusters.
//!
//! ```bash
//! cargo run --release --example national_nightly
//! ```

use epiflow::core::CombinedWorkflow;
use epiflow::hpcsim::schedule::PackAlgo;
use epiflow::hpcsim::task::WorkloadSpec;
use epiflow::surveillance::{RegionRegistry, Scale};

fn main() {
    let registry = RegionRegistry::new();
    let scale = Scale::default();

    println!("══════ night 1: calibration (300 × 51 × 1 = 15,300 simulations) ══════\n");
    let calibration =
        CombinedWorkflow { workload: WorkloadSpec::calibration(), ..Default::default() }
            .run(&registry, scale);
    print!("{}", calibration.timeline_text());
    summarize(&calibration);

    println!("\n══════ night 2: prediction (12 × 51 × 15 = 9,180 simulations) ══════\n");
    let prediction =
        CombinedWorkflow { workload: WorkloadSpec::prediction(), ..Default::default() }
            .run(&registry, scale);
    print!("{}", prediction.timeline_text());
    summarize(&prediction);

    println!("\n══════ ablation: the scheduling heuristic matters ══════\n");
    let nfdt = CombinedWorkflow {
        workload: WorkloadSpec::prediction(),
        algo: PackAlgo::NfdtDc,
        ..Default::default()
    }
    .run(&registry, scale);
    println!(
        "FFDT-DC: {:5} completed, makespan {:5.1} h, utilization {:5.1}%",
        prediction.slurm.completed,
        prediction.slurm.makespan_secs / 3600.0,
        prediction.slurm.utilization * 100.0
    );
    println!(
        "NFDT-DC: {:5} completed, makespan {:5.1} h, utilization {:5.1}%",
        nfdt.slurm.completed,
        nfdt.slurm.makespan_secs / 3600.0,
        nfdt.slurm.utilization * 100.0
    );
}

fn summarize(report: &epiflow::core::CombinedReport) {
    println!(
        "\n  {} simulations, {} completed in the nightly window; within window: {}",
        report.n_tasks, report.slurm.completed, report.within_window
    );
    println!(
        "  remote utilization {:.1}% over {} peak nodes; raw output {:.2} TB stays remote, \
         {:.2} GB of summaries come home",
        report.slurm.utilization * 100.0,
        report.slurm.peak_nodes,
        report.raw_output_bytes as f64 / 1e12,
        report.summary_bytes as f64 / 1e9
    );
    println!("  end-to-end cycle: {:.1} h", report.cycle_secs / 3600.0);
}
