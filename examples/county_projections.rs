//! Case study 2 — county-level projections with the metapopulation
//! model (paper Appendix F).
//!
//! SEIR dynamics across Virginia's counties coupled by commuting flows,
//! calibrated to county-level confirmed cases by direct MCMC (Eq. 6,
//! 20%-of-count Gaussian noise), then projected under the case study's
//! five scenarios: worst case plus four intense-social-distancing
//! variants (end date April 30 / June 10 × 25% / 50% transmissibility
//! reduction).
//!
//! ```bash
//! cargo run --release --example county_projections
//! ```

use epiflow::calibrate::{calibrate_direct, MetropolisConfig, ParamSpace};
use epiflow::metapop::{MetapopModel, Mixing, Scenario, SeirParams};
use epiflow::surveillance::RegionRegistry;

fn main() {
    let registry = RegionRegistry::new();
    let va = registry.by_abbrev("VA").expect("Virginia exists").id;
    // Model the 20 largest counties (the tail is tiny under the
    // rank-size rule).
    let counties: Vec<f64> =
        registry.counties(va).iter().take(20).map(|c| c.population as f64).collect();
    let pops: Vec<u64> = counties.iter().map(|&p| p as u64).collect();
    println!(
        "Virginia metapopulation: {} counties, {:.1}M people\n",
        counties.len(),
        counties.iter().sum::<f64>() / 1e6
    );

    // "Observed" county case counts from a hidden-parameter model run
    // (transmissibility and infectious duration are the calibrated
    // parameters, as in the case study).
    let horizon = 120u32;
    let seeds: Vec<f64> = counties.iter().map(|p| (p / 2e5).clamp(0.0, 30.0)).collect();
    let truth = [0.52, 5.5]; // (beta, infectious days)
    let simulate = |theta: &[f64]| -> Vec<Vec<f64>> {
        let params = SeirParams { beta: theta[0], gamma: 1.0 / theta[1], ..SeirParams::default() };
        let model = MetapopModel::new(params, Mixing::gravity(&pops, 0.8), counties.clone());
        let out = model.run_deterministic(
            horizon,
            &seeds,
            &Scenario {
                name: "fit-window".into(),
                distancing_start: Some(54),
                distancing_end: 400,
                beta_multiplier: 0.6,
            },
            2,
        );
        // Reported cases = 25% ascertainment of new symptomatic cases.
        out.new_cases
            .iter()
            .map(|day| day.iter().map(|c| c * 0.25).collect::<Vec<f64>>())
            .collect::<Vec<_>>()
            // transpose to per-county series
            .into_iter()
            .fold(vec![Vec::new(); counties.len()], |mut acc, day| {
                for (a, d) in acc.iter_mut().zip(day) {
                    a.push(d);
                }
                acc
            })
    };
    let observed = simulate(&truth);

    // Calibrate transmissibility + infectious duration by direct MCMC.
    println!("calibrating (β, infectious duration) by direct MCMC over the metapopulation model …");
    let space = ParamSpace::new(&[("beta", 0.2, 0.9), ("inf_days", 3.0, 9.0)]);
    let posterior = calibrate_direct(
        &space,
        simulate,
        &observed,
        0.20, // the paper's 20%-of-count noise model
        &MetropolisConfig { iterations: 2500, burn_in: 600, seed: 17, ..Default::default() },
    );
    let mean = posterior.theta.mean();
    let sd = posterior.theta.std_dev();
    println!(
        "  posterior β = {:.3} ± {:.3} (truth {:.3}); infectious days = {:.2} ± {:.2} (truth {:.1})",
        mean[0], sd[0], truth[0], mean[1], sd[1], truth[1]
    );
    println!("  {} simulator calls inside the MCMC loop\n", posterior.n_sim_calls);

    // Project the five scenarios from the posterior mean.
    println!("projections under the case study's five scenarios (160 days):");
    println!("{:>26} {:>14} {:>12} {:>12}", "scenario", "cum. cases", "peak hosp.", "deaths");
    let params = SeirParams { beta: mean[0], gamma: 1.0 / mean[1], ..SeirParams::default() };
    let model = MetapopModel::new(params, Mixing::gravity(&pops, 0.8), counties.clone());
    for scenario in Scenario::case_study_set() {
        let out = model.run_deterministic(160, &seeds, &scenario, 2);
        let cum: f64 = out.final_cumulative_cases().iter().sum();
        let peak_hosp = out.hospital_occupancy().iter().cloned().fold(0.0, f64::max);
        let deaths = *out.deaths().last().unwrap();
        println!("{:>26} {:>14.0} {:>12.0} {:>12.0}", scenario.name, cum, peak_hosp, deaths);
    }
    println!(
        "\n(the reproduction target is the ordering: worst case ≫ short/weak distancing\n\
         ≫ long/strong distancing, with hospital peaks shifted and flattened)"
    );
}
