//! Quickstart: build a synthetic state, run the agent-based COVID-19
//! simulator on it, and look at the epidemic.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use epiflow::epihiper::covid::{covid19_model, states};
use epiflow::epihiper::interventions::base_case;
use epiflow::epihiper::{SimConfig, Simulation};
use epiflow::surveillance::{RegionRegistry, Scale};
use epiflow::synthpop::{build_region, BuildConfig};

fn main() {
    // 1. The 51-region registry and a scaled-down synthetic Delaware.
    let registry = RegionRegistry::new();
    let de = registry.by_abbrev("DE").expect("Delaware exists").id;
    let data = build_region(
        &registry,
        de,
        &BuildConfig { scale: Scale::one_per(2000.0), seed: 42, ..Default::default() },
    );
    let stats = data.network.stats();
    println!(
        "Synthetic Delaware: {} persons in {} households, contact network with {} edges \
         (mean degree {:.1})",
        data.population.len(),
        data.population.households.len(),
        stats.edges,
        stats.mean_degree
    );

    // 2. The COVID-19 disease model (Fig. 12 / Tables III–IV) plus the
    //    paper's base intervention stack: voluntary home isolation,
    //    school closure at day 30, stay-at-home days 45–130 at 60%
    //    compliance.
    let mut model = covid19_model();
    model.transmissibility = 0.35;
    let interventions = base_case(states::SYMPTOMATIC, 30, 45, 130, 0.6, 0.6);

    // 3. Run 150 days on 4 partitions (results are identical for any
    //    partition count — the engine's RNG is counter-based).
    let age: Vec<u8> =
        data.population.persons.iter().map(|p| p.age_group().index() as u8).collect();
    let county: Vec<u16> = data.population.persons.iter().map(|p| p.county).collect();
    let mut sim = Simulation::new(
        &data.network,
        model,
        age,
        county,
        interventions,
        SimConfig {
            ticks: 150,
            seed: 7,
            n_partitions: 4,
            initial_infections: 10,
            ..Default::default()
        },
    );
    let result = sim.run();
    println!(
        "Simulated 150 days in {:.3} s on {} partitions",
        result.elapsed.as_secs_f64(),
        sim.partitioning().len()
    );

    // 4. Inspect the outcome.
    let cum = result.output.cumulative(states::SYMPTOMATIC);
    let deaths = result.output.cumulative(states::DEATH);
    println!(
        "Outcome: {} cumulative symptomatic cases, {} deaths, {} total infections",
        cum.last().unwrap(),
        deaths.last().unwrap(),
        result.output.total_infections()
    );
    let d = result.output.dendogram_stats(&sim.model);
    println!(
        "Transmission forest: {} roots, {} transmissions, max depth {}, mean offspring {:.2}",
        d.roots, d.transmissions, d.max_depth, d.mean_offspring
    );

    // 5. A tiny epicurve.
    let daily = result.output.daily_new(states::SYMPTOMATIC);
    let peak = daily.iter().enumerate().max_by_key(|x| *x.1).unwrap();
    println!("Epidemic peak: {} new symptomatic cases on day {}", peak.1, peak.0);
}
