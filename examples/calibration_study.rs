//! Case study 3 — calibrating the agent-based model (paper Appendix F).
//!
//! Reproduces the Virginia calibration-prediction cycle: a 100-point
//! Latin hypercube prior over (TAU, SYMP, SH, VHI), EpiHiper runs at
//! each design point, a GP-emulator Bayesian calibration against the
//! observed curve, and a forward prediction from the posterior.
//!
//! Because the "observed" curve is generated from a hidden θ, the
//! example verifies that the calibration actually recovers it.
//!
//! ```bash
//! cargo run --release --example calibration_study
//! ```

use epiflow::calibrate::{GpmsaConfig, MetropolisConfig};
use epiflow::core::runner::run_cell;
use epiflow::core::{CalibrationWorkflow, CellConfig, PredictionWorkflow};
use epiflow::surveillance::{RegionRegistry, Scale};
use epiflow::synthpop::{build_region, BuildConfig};

fn main() {
    let registry = RegionRegistry::new();
    let va = registry.by_abbrev("VA").expect("Virginia exists").id;
    let data = build_region(
        &registry,
        va,
        &BuildConfig { scale: Scale::one_per(8000.0), seed: 1, ..Default::default() },
    );
    println!(
        "Virginia (1/8000): {} persons, {} edges",
        data.population.len(),
        data.network.n_edges()
    );

    // The case study's mitigation timeline: school closure, then a
    // stay-at-home order, voluntary home isolation throughout.
    let base = CellConfig {
        days: 70,
        sc_start: 30,
        sh_start: 45,
        sh_end: 200,
        initial_infections: 10,
        ..Default::default()
    };

    // Hidden truth (what the real system can never know).
    let truth = [0.28, 0.60, 0.55, 0.50];
    let observed =
        run_cell(&data, &CellConfig::from_theta(999, &truth, &base), 5, 4, false, 0xFEED);
    println!("generated observed curve from hidden θ = {truth:?}");

    // Calibrate: 100 LHS prior cells, GPMSA posterior, 100 posterior
    // configurations — the paper's exact design.
    let workflow = CalibrationWorkflow {
        n_prior_cells: 100,
        n_posterior: 100,
        base: base.clone(),
        gpmsa: GpmsaConfig {
            mcmc: MetropolisConfig {
                iterations: 3000,
                burn_in: 800,
                seed: 2,
                ..Default::default()
            },
            gibbs_sweeps: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    println!("\nsimulating 100 prior configurations + fitting emulator + MCMC …");
    let result = workflow.run(&data, &observed.log_cum_symptomatic);

    let mean = result.posterior.theta.mean();
    let sd = result.posterior.theta.std_dev();
    println!("\nposterior vs truth:");
    for (k, name) in ["TAU", "SYMP", "SH", "VHI"].iter().enumerate() {
        println!("  {name:>5}: posterior {:.3} ± {:.3}   truth {:.3}", mean[k], sd[k], truth[k]);
    }
    println!(
        "  corr(TAU, SYMP) = {:.3}  (paper: negative — the two trade off)",
        result.posterior.theta.correlation(0, 1)
    );

    // Predict forward 8 weeks with 20 posterior configs × 5 replicates.
    let configs: Vec<CellConfig> = result.posterior_configs.iter().take(20).cloned().collect();
    let prediction = PredictionWorkflow {
        replicates: 5,
        horizon_days: base.days + 56,
        n_partitions: 4,
        seed: 3,
    }
    .run(&data, &configs);
    let d = (base.days + 55) as usize;
    println!(
        "\n8-week-ahead cumulative case forecast: median {:.0}, 95% band [{:.0}, {:.0}]",
        prediction.cumulative_band.median[d],
        prediction.cumulative_band.lo[d],
        prediction.cumulative_band.hi[d]
    );

    // Verify against the (hidden) future.
    let future = run_cell(
        &data,
        &CellConfig { days: base.days + 56, ..CellConfig::from_theta(998, &truth, &base) },
        5,
        4,
        false,
        0xFEED,
    );
    let actual = future.log_cum_symptomatic[d].exp() - 1.0;
    let inside =
        actual >= prediction.cumulative_band.lo[d] && actual <= prediction.cumulative_band.hi[d];
    println!("actual (hidden) outcome: {actual:.0} → inside 95% band: {inside}");
}
